//! Process-elastic coupling over the wire: a zombie is convicted and
//! evicted, then a *spare OS process* joins to refill the lost capacity.
//!
//! ```text
//! cargo run --release --example wire_elastic [trace.json]
//! ```
//!
//! The driver (rank 0) forks two workers (ranks 1 and 2) with a membership
//! ceiling of 4 and couples with them over Unix-domain sockets: each epoch
//! partitions a 36-element field among the live workers.
//!
//! After epoch 2 the driver SIGSTOPs worker 1 — the cruelest failure on
//! this transport, because nothing *closes*: the frozen process's sockets
//! stay open and its listener backlog even keeps accepting dials, so
//! heartbeat-miss plus reconnect "succeeds" forever. What follows:
//!
//! 1. The next epoch's assignment leaves undelivered data behind the
//!    peer's progress-fence watermark; the watermark freezes across
//!    consecutive fences and the peer is **quarantined** — provisionally
//!    dead, blocked operations fail fast, but still reversible.
//! 2. No SIGCONT comes, the grace period expires, and quarantine hardens
//!    into **eviction**. The survivors commit the shrink through the same
//!    agreement plane as a `kill -9` death.
//! 3. The driver launches a *spare process* into the freed capacity: the
//!    newcomer dials the mesh, the sponsor runs the offer → unanimous
//!    vote → commit handshake, and the state blob (the epoch to resume)
//!    is replayed to it. The interrupted epoch is retried at full width
//!    on the grown membership.
//!
//! Every completed epoch matches the fault-free oracle, and the Chrome
//! trace records the quarantine/evict/join transitions.

use std::time::{Duration, Instant};

use mxn::trace::TraceCollector;
use mxn::wire::{
    spawn_spare, spawn_worker_max, wire_role, CodecRegistry, WireConfig, WireNode, WireRole,
};
use mxn_runtime::RuntimeError;

const SIZE: usize = 3;
const MAX: usize = 4;
const SPARE_RANK: usize = 3;
const FIELD: usize = 36;
const EPOCHS: u64 = 6;
const STOP_AFTER_EPOCH: u64 = 2;
const APP: u32 = 7;
const ASSIGN_TAG: i32 = 1000;
const SEED: u64 = 42;

const MSG_DONE: u64 = u64::MAX;
const MSG_RECOVER: u64 = u64::MAX - 1;
const MSG_JOIN: u64 = u64::MAX - 2;

/// Reply tag for (epoch, attempt): retried epochs use fresh tags so a
/// stale pre-failure reply can never be mistaken for the retry's.
fn reply_tag(epoch: u64, attempt: u64) -> i32 {
    (epoch * 8 + attempt) as i32
}

fn value(idx: usize, epoch: u64) -> f64 {
    (idx as u64 + epoch * 100) as f64
}

fn config(dir: &std::path::Path, rank: usize, size: usize, max: usize) -> WireConfig {
    let mut cfg = WireConfig::new(dir, rank, size);
    cfg.max_size = max;
    cfg.seed = SEED;
    cfg
}

/// Shared serve loop: workers and the admitted spare answer assignments
/// (`[epoch, lo, hi, attempt]` → the owned slice's values), vote on
/// admissions, join survivor agreements, and exit on the goodbye.
fn serve(node: &WireNode, rank: usize) {
    loop {
        let msg: Vec<u64> = match node.recv(0, APP, ASSIGN_TAG) {
            Ok(m) => m,
            Err(RuntimeError::PeerDead { .. }) => std::process::exit(1), // driver gone
            Err(e) => panic!("worker {rank}: assignment recv failed: {e}"),
        };
        match msg[0] {
            MSG_DONE => break,
            MSG_RECOVER => {
                let survivors = node
                    .agree_survivors(msg[1] as u32, Duration::from_secs(5))
                    .expect("agree survivors");
                eprintln!("[rank {rank}] committed survivors: {survivors:?}");
            }
            MSG_JOIN => {
                let admitted = node.join_vote(0, Duration::from_secs(10)).expect("join vote");
                eprintln!("[rank {rank}] voted; rank {admitted} admitted, mesh now {}", node.size());
            }
            epoch => {
                let (lo, hi, attempt) = (msg[1] as usize, msg[2] as usize, msg[3]);
                let slice: Vec<(usize, f64)> =
                    (lo..hi).map(|idx| (idx, value(idx, epoch))).collect();
                node.send(0, APP, reply_tag(epoch, attempt), slice).expect("send slice");
            }
        }
    }
}

fn worker_main(role: &WireRole) {
    let node = WireNode::start(
        config(&role.dir, role.rank, role.size, role.max_size),
        CodecRegistry::with_defaults(),
    )
    .expect("start node");
    node.connect().expect("connect mesh");
    serve(&node, role.rank);
    node.shutdown();
}

/// The spare: a brand-new OS process dialing an already-running mesh. It
/// joins through the sponsor's offer/vote/commit handshake; the state blob
/// it receives back is the epoch to resume from.
fn spare_main(role: &WireRole) {
    let node = WireNode::start(
        config(&role.dir, role.rank, role.size, role.max_size),
        CodecRegistry::with_defaults(),
    )
    .expect("start spare node");
    node.connect().expect("spare: dial mesh");
    let state = node.join_mesh(0, Duration::from_secs(10)).expect("spare: join");
    let resume = u64::from_le_bytes(state[..8].try_into().expect("state blob"));
    eprintln!("[spare {}] admitted into a {}-mesh; resuming at epoch {resume}", role.rank, node.size());
    serve(&node, role.rank);
    node.shutdown();
}

/// Even split of `0..FIELD` over `workers`, as `(rank, lo, hi)` triples.
fn partition(workers: &[usize]) -> Vec<(usize, usize, usize)> {
    let chunk = FIELD.div_ceil(workers.len());
    workers
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, (i * chunk).min(FIELD), ((i + 1) * chunk).min(FIELD)))
        .collect()
}

fn driver_main(dir: std::path::PathBuf, trace_out: String) {
    let collector = TraceCollector::new(1);
    let handle = collector.handle(0);
    let _guard = handle.install();

    let node = WireNode::start_traced(
        config(&dir, 0, SIZE, MAX),
        CodecRegistry::with_defaults(),
        Some(handle),
    )
    .expect("start driver node");

    let mut workers: Vec<_> = (1..SIZE)
        .map(|r| spawn_worker_max(r, SIZE, MAX, &dir, SEED, &[]).expect("spawn worker"))
        .collect();
    node.connect().expect("connect mesh");
    println!("mesh up: driver + {} workers, ceiling {MAX}, over {}", workers.len(), dir.display());

    let mut spare_guard = None;
    let mut live: Vec<usize> = (1..SIZE).collect();
    let mut epoch = 0u64;
    let mut attempt = 0u64;
    let mut stopped_at: Option<Instant> = None;
    let mut rejoined = false;
    while epoch < EPOCHS {
        let parts = partition(&live);
        let mut failed: Option<usize> = None;
        for &(w, lo, hi) in &parts {
            if node.send(w, APP, ASSIGN_TAG, vec![epoch, lo as u64, hi as u64, attempt]).is_err() {
                failed = Some(w);
            }
        }
        let mut field = vec![f64::NAN; FIELD];
        for &(w, _, _) in &parts {
            match node.recv_timeout::<Vec<(usize, f64)>>(
                w,
                APP,
                reply_tag(epoch, attempt),
                Duration::from_secs(2),
            ) {
                Ok(slice) => {
                    for (idx, v) in slice {
                        field[idx] = v;
                    }
                }
                Err(RuntimeError::Timeout { .. }) | Err(RuntimeError::PeerDead { .. }) => {
                    failed = Some(w);
                }
                Err(e) => panic!("driver: epoch {epoch} recv from {w}: {e}"),
            }
        }
        if let Some(zombie) = failed {
            let t0 = stopped_at.expect("only the frozen worker may fail");
            // 1. Quarantine: the fence watermark froze with data
            //    outstanding. Heartbeats alone never get here — the
            //    frozen process's sockets are all still open.
            assert!(
                node.await_quarantine(zombie, Duration::from_secs(15)),
                "zombie was never quarantined"
            );
            println!(
                "epoch {epoch}: rank {zombie} quarantined {:?} after SIGSTOP (reversible)",
                t0.elapsed()
            );
            // 2. Eviction: no resume inside the grace period → final.
            let deadline = Instant::now() + Duration::from_secs(15);
            while !node.is_evicted(zombie) {
                assert!(Instant::now() < deadline, "zombie was never evicted");
                std::thread::sleep(Duration::from_millis(5));
            }
            println!("epoch {epoch}: rank {zombie} evicted {:?} after SIGSTOP (final)", t0.elapsed());
            live.retain(|&w| w != zombie);
            for &w in &live {
                node.send(w, APP, ASSIGN_TAG, vec![MSG_RECOVER, epoch, 0, 0])
                    .expect("send recover marker");
            }
            let survivors =
                node.agree_survivors(epoch as u32, Duration::from_secs(5)).expect("agree");
            println!("epoch {epoch}: survivors committed: {survivors:?}");

            // 3. Backfill: launch a spare process into the freed capacity
            //    and sponsor its admission.
            spare_guard =
                Some(spawn_spare(SPARE_RANK, MAX, MAX, &dir, SEED, &[]).expect("spawn spare"));
            for &w in &live {
                node.send(w, APP, ASSIGN_TAG, vec![MSG_JOIN, 0, 0, 0]).expect("send join marker");
            }
            let new_size = node
                .expand_mesh(0, &epoch.to_le_bytes(), Duration::from_secs(10))
                .expect("spare join must commit");
            println!("epoch {epoch}: spare admitted as rank {SPARE_RANK}; mesh size {new_size}");
            live.push(SPARE_RANK);
            rejoined = true;
            attempt += 1;
            continue; // retry the interrupted epoch on the refilled membership
        }
        for (idx, &v) in field.iter().enumerate() {
            assert_eq!(v, value(idx, epoch), "field[{idx}] wrong in epoch {epoch}");
        }
        println!("epoch {epoch}: field complete and correct across {} worker(s)", parts.len());
        if epoch == STOP_AFTER_EPOCH && stopped_at.is_none() {
            let victim = &workers[0]; // worker rank 1
            println!("SIGSTOP worker rank {} (pid {}) — a zombie, not a corpse", victim.rank(), victim.pid());
            assert!(victim.sigstop(), "SIGSTOP failed");
            stopped_at = Some(Instant::now());
        }
        epoch += 1;
        attempt = 0;
    }
    assert!(rejoined, "the freeze never forced an evict + rejoin");

    for &w in &live {
        node.send(w, APP, ASSIGN_TAG, vec![MSG_DONE, 0, 0, 0]).expect("send done");
    }
    for g in &mut workers {
        if live.contains(&g.rank()) {
            assert!(g.wait_success(Duration::from_secs(10)), "worker exited unclean");
        } else {
            g.kill(); // SIGKILL lands even on a stopped process
        }
    }
    if let Some(mut spare) = spare_guard {
        assert!(spare.wait_success(Duration::from_secs(10)), "spare exited unclean");
    }
    let stats = node.stats();
    println!(
        "wire stats: fences={} quarantined={} readmitted={} evicted={} joins: committed={} aborted={}",
        stats.fences_sent,
        stats.zombies_quarantined,
        stats.zombies_readmitted,
        stats.zombies_evicted,
        stats.joins_committed,
        stats.joins_aborted
    );
    node.shutdown();

    let trace = collector.finish();
    if let Some(parent) = std::path::Path::new(&trace_out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&trace_out, trace.chrome_json()).expect("write chrome trace");
    println!(
        "all {EPOCHS} epochs match the fault-free oracle across a freeze, an eviction, \
         and a spare-process join; trace: {trace_out}"
    );
}

fn main() {
    if let Some(role) = wire_role() {
        if role.spare {
            spare_main(&role);
        } else {
            worker_main(&role);
        }
        return;
    }
    let trace_out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/wire_elastic_trace.json".to_string());
    let dir = std::env::temp_dir().join(format!("mxn-wire-elastic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    driver_main(dir.clone(), trace_out);
    let _ = std::fs::remove_dir_all(&dir);
}
