//! Fluid–structure coupling through paired M×N components (Figure 3).
//!
//! A "fluid" solver on 4 processes and a "structure" solver on 6 exchange
//! interface fields every step: the fluid exports the pressure field on a
//! persistent channel, the structure exports displacements back. Each side
//! only calls `data_ready()` when its own data is consistent; no global
//! synchronization couples the two time loops.
//!
//! ```text
//! cargo run --example fluid_structure
//! ```

use std::sync::Arc;

use mxn::core::{ConnectionKind, MxnComponent, TransferOutcome};
use mxn::dad::{AccessMode, Dad, Extents, LocalArray};
use mxn::runtime::Universe;

const NX: usize = 16;
const NY: usize = 12;
const STEPS: u64 = 12;
const COUPLE_EVERY: u32 = 3;

fn main() {
    let extents = Extents::new([NX, NY]);
    // The two codes decompose the shared interface differently.
    let fluid_dad = Dad::block(extents.clone(), &[4, 1]).unwrap(); // 4 row blocks
    let struct_dad = Dad::block(extents.clone(), &[2, 3]).unwrap(); // 2×3 grid

    println!("fluid (M=4, row blocks) ⇄ structure (N=6, 2×3 blocks)");
    println!("field {NX}×{NY}, {STEPS} steps, coupling every {COUPLE_EVERY} steps\n");

    Universe::run(&[4, 6], |_, ctx| {
        let rank = ctx.comm.rank();
        let mut mxn = MxnComponent::new(rank);
        if ctx.program == 0 {
            fluid(ctx.intercomm(1), rank, &fluid_dad, &mut mxn);
        } else {
            structure(ctx.intercomm(0), rank, &struct_dad, &mut mxn);
        }
    });

    println!("\ncoupled run finished: both solvers verified the exchanged fields each transfer");
}

fn fluid(ic: &mxn::runtime::InterComm, rank: usize, dad: &Dad, mxn: &mut MxnComponent) {
    // Register the exported pressure and the imported displacement.
    let pressure = Arc::new(parking_lot::RwLock::new(LocalArray::from_fn(dad, rank, |_| 0.0)));
    mxn.register_field("pressure", dad.clone(), AccessMode::Read, pressure.clone()).unwrap();
    let displacement =
        mxn.register_allocated("displacement", dad.clone(), AccessMode::Write).unwrap();

    let mut out = mxn
        .export_field(
            ic,
            "pressure",
            "pressure",
            ConnectionKind::Persistent { period: COUPLE_EVERY },
        )
        .unwrap();
    let mut inc = mxn.accept_connection(ic).unwrap();

    for step in 0..STEPS {
        // "Solve" the fluid: pressure = step at every interface point.
        {
            let mut p = pressure.write();
            for i in 0..p.num_patches() {
                let (_, buf) = p.patch_mut(i);
                buf.fill(step as f64);
            }
        }
        out.data_ready(ic, mxn.registry()).unwrap();
        if let TransferOutcome::Transferred { elements } =
            inc.data_ready(ic, mxn.registry()).unwrap()
        {
            // The structure answered with displacements = -(its last pressure).
            let d = displacement.read();
            let sample = *d.iter().next().unwrap().1;
            if rank == 0 {
                println!("fluid step {step:2}: received {elements} displacement values (sample {sample})");
            }
            assert_eq!(sample, -(step as f64));
        }
    }
    let (calls, transfers) = out.stats();
    if rank == 0 {
        println!("fluid: {calls} data_ready calls, {transfers} transfers out");
    }
}

fn structure(ic: &mxn::runtime::InterComm, rank: usize, dad: &Dad, mxn: &mut MxnComponent) {
    let pressure = mxn.register_allocated("pressure", dad.clone(), AccessMode::Write).unwrap();
    let displacement = Arc::new(parking_lot::RwLock::new(LocalArray::from_fn(dad, rank, |_| 0.0)));
    mxn.register_field("displacement", dad.clone(), AccessMode::Read, displacement.clone())
        .unwrap();

    let mut inc = mxn.accept_connection(ic).unwrap();
    let mut out = mxn
        .export_field(
            ic,
            "displacement",
            "displacement",
            ConnectionKind::Persistent { period: COUPLE_EVERY },
        )
        .unwrap();

    for _step in 0..STEPS {
        if let TransferOutcome::Transferred { .. } = inc.data_ready(ic, mxn.registry()).unwrap() {
            // "Solve" the structure: displacement responds to the pressure.
            let p_val = *pressure.read().iter().next().unwrap().1;
            let mut d = displacement.write();
            for i in 0..d.num_patches() {
                let (_, buf) = d.patch_mut(i);
                buf.fill(-p_val);
            }
        }
        out.data_ready(ic, mxn.registry()).unwrap();
    }
}
