//! Runs a traced M×N redistribution and exports the merged trace as
//! Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).
//!
//! ```text
//! cargo run --release --example trace_viewer_export [out.json]
//! ```
//!
//! Prints the run digest (the value the golden-trace suite pins) and the
//! per-category aggregation table, then writes the viewer JSON.

use std::fs;

use mxn::dad::{AxisDist, Dad, Extents, LocalArray, Template};
use mxn::runtime::Universe;
use mxn::schedule::{recv_redistributed, send_redistributed};

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "target/trace_viewer_export.json".to_string());

    let (_, trace) = Universe::run_traced(&[2, 3], |_, ctx| {
        let e = Extents::new([8, 8]);
        let src = Dad::block(e.clone(), &[2, 1]).unwrap();
        let dst = Dad::regular(
            Template::new(e, vec![AxisDist::Collapsed, AxisDist::Cyclic { nprocs: 3 }]).unwrap(),
        );
        if ctx.program == 0 {
            let mine = LocalArray::from_fn(&src, ctx.comm.rank(), |i| (i[0] * 8 + i[1]) as f64);
            send_redistributed(ctx.intercomm(1), &src, &dst, &mine, 7).unwrap();
        } else {
            let mine: LocalArray<f64> =
                recv_redistributed(ctx.intercomm(0), &src, &dst, 7).unwrap();
            for (idx, &v) in mine.iter() {
                assert_eq!(v, (idx[0] * 8 + idx[1]) as f64);
            }
        }
        // A few collectives so the viewer shows more than redistribution.
        let sum = ctx.comm.allreduce(ctx.comm.rank() as u64, |a, b| *a += b).unwrap();
        let expect: u64 = (0..ctx.comm.size() as u64).sum();
        assert_eq!(sum, expect);
        ctx.comm.barrier().unwrap();
    });

    println!("digest: {}", trace.digest_hex());
    println!("{}", trace.summary_table());

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out_path, trace.chrome_json()).expect("write chrome trace json");
    println!("wrote {out_path}");
}
