//! Fault replay: the README's lossy coupling, run twice from one seed.
//!
//! A 2-rank producer program and a 3-rank consumer program exchange
//! messages under a fault plane that drops 25% of messages, corrupts
//! 15%, delays everything by 200µs, and kills world rank 3 at its 40th
//! messaging op. The run executes twice with the same seed; the fault
//! traces must be byte-identical. Run with:
//!
//! ```text
//! cargo run --example fault_replay
//! ```

use std::time::Duration;

use mxn::runtime::{ChannelPolicy, FaultConfig, FaultTrace, RuntimeError, Universe};

/// One lossy coupling round-trip; returns a per-rank outcome summary.
fn coupled_run(seed: u64) -> (Vec<String>, FaultTrace) {
    let faults = FaultConfig::reliable(seed)
        .with_default_policy(ChannelPolicy {
            drop: 0.25,
            corrupt: 0.15,
            delay: Duration::from_micros(200),
            ..ChannelPolicy::reliable()
        })
        .with_death(3, 40);

    Universe::run_with_faults(&[2, 3], faults, |p, ctx| {
        let timeout = Duration::from_millis(50);
        let mut delivered = 0u32;
        let mut dropped = 0u32;
        let mut corrupt = 0u32;
        let mut peer_dead = 0u32;

        for round in 0..30 {
            if ctx.program == 0 {
                // Producers blast every consumer; a send only fails when
                // the sender's own scheduled death fires.
                for dst in 0..ctx.intercomm(1).remote_size() {
                    if ctx.intercomm(1).send(dst, round, round as u64).is_err() {
                        return format!("rank {}: died mid-send", p.rank());
                    }
                }
            } else {
                // Consumers treat every failure mode as an outcome.
                for _ in 0..ctx.intercomm(0).local_size() {
                    match ctx.intercomm(0).recv_timeout::<u64>(
                        mxn::runtime::Src::Any,
                        round,
                        timeout,
                    ) {
                        Ok(_) => delivered += 1,
                        Err(RuntimeError::Timeout { .. }) => dropped += 1,
                        Err(RuntimeError::Corrupt { .. }) => corrupt += 1,
                        Err(RuntimeError::PeerDead { .. }) => peer_dead += 1,
                        Err(e) => return format!("rank {}: unexpected {e:?}", p.rank()),
                    }
                }
            }
        }
        format!(
            "rank {}: delivered={delivered} dropped={dropped} corrupt={corrupt} peer_dead={peer_dead}",
            p.rank()
        )
    })
}

fn main() {
    let seed = 7;
    let (results_a, trace_a) = coupled_run(seed);
    let (results_b, trace_b) = coupled_run(seed);

    println!("run A (seed {seed}):");
    for line in &results_a {
        println!("  {line}");
    }
    println!("run A: {} fault(s) injected, trace digest {:016x}", trace_a.len(), trace_a.digest());
    println!("run B: {} fault(s) injected, trace digest {:016x}", trace_b.len(), trace_b.digest());

    assert_eq!(trace_a.digest(), trace_b.digest(), "same seed must replay identically");
    assert_eq!(results_a, results_b, "per-rank outcomes must replay identically");
    println!("\nsame seed ⇒ byte-identical fault trace and identical per-rank outcomes");
}
