//! # mxn — parallel data redistribution and PRMI for component architectures
//!
//! A complete reproduction of *"Data Redistribution and Remote Method
//! Invocation in Parallel Component Architectures"* (Bertrand, Bramley,
//! Bernholdt, Kohl, Sussman, Larson, Damevski — IPPS 2005): the CCA M×N
//! problem, its middleware solutions, and every system they depend on.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! stable module names and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`runtime`] | `mxn-runtime` | MPI-like message-passing substrate (ranks as threads, communicators, collectives, intercommunicators, multi-program universes) |
//! | [`dad`] | `mxn-dad` | The Distributed Array Descriptor (block/cyclic/block-cyclic/gen-block/implicit/explicit), local patch storage, DA-package converters |
//! | [`linearize`] | `mxn-linearize` | Meta-Chaos-style linearization: segment lists, array/tree/graph orders, the schedule-free receiver-request protocol |
//! | [`schedule`] | `mxn-schedule` | Reusable communication schedules (region fast path + generic linearization sweep), schedule caching, one-call redistribution |
//! | [`framework`] | `mxn-framework` | CCA component framework: uses/provides ports, direct-connected and distributed (RMI) flavors, Go ports |
//! | [`core`] | `mxn-core` | **The paper's contribution**: the generalized M×N component — field registration, one-shot/persistent connections, `data_ready()`, third-party coordination |
//! | [`prmi`] | `mxn-prmi` | Parallel RMI: independent & collective calls, ghost invocations/returns, parallel arguments, one-way methods, Figure-5 synchronization |
//! | [`dca`] | `mxn-dca` | The Distributed CCA Architecture: communicator-carrying stubs, barrier-delayed delivery, alltoallv-style user redistribution |
//! | [`intercomm`] | `mxn-intercomm` | InterComm: partitioned descriptors, import/export with timestamp matching rules |
//! | [`mct`] | `mxn-mct` | The Model Coupling Toolkit: registry, attribute vectors, segment maps, routers, sparse-matrix interpolation, integrals, accumulators, merges |
//!
//! ## Quickstart
//!
//! Redistribute a block-row array on 2 ranks into a block-column array on
//! 3 ranks (the "M×N problem" in 20 lines):
//!
//! ```
//! use mxn::dad::{Dad, Extents, LocalArray};
//! use mxn::runtime::Universe;
//! use mxn::schedule::{recv_redistributed, send_redistributed};
//!
//! Universe::run(&[2, 3], |_, ctx| {
//!     let e = Extents::new([6, 6]);
//!     let src = Dad::block(e.clone(), &[2, 1]).unwrap(); // 2 row blocks
//!     let dst = Dad::block(e, &[1, 3]).unwrap(); // 3 col blocks
//!     if ctx.program == 0 {
//!         let mine = LocalArray::from_fn(&src, ctx.comm.rank(), |i| (i[0] * 6 + i[1]) as f64);
//!         send_redistributed(ctx.intercomm(1), &src, &dst, &mine, 0).unwrap();
//!     } else {
//!         let mine: LocalArray<f64> =
//!             recv_redistributed(ctx.intercomm(0), &src, &dst, 0).unwrap();
//!         for (idx, &v) in mine.iter() {
//!             assert_eq!(v, (idx[0] * 6 + idx[1]) as f64);
//!         }
//!     }
//! });
//! ```

pub mod feature_matrix;

/// The MPI-like message-passing runtime (`mxn-runtime`).
pub mod runtime {
    pub use mxn_runtime::*;
}

/// The Distributed Array Descriptor (`mxn-dad`).
pub mod dad {
    pub use mxn_dad::*;
}

/// Linearization and the receiver-request protocol (`mxn-linearize`).
pub mod linearize {
    pub use mxn_linearize::*;
}

/// Communication schedules (`mxn-schedule`).
pub mod schedule {
    pub use mxn_schedule::*;
}

/// The CCA component framework (`mxn-framework`).
pub mod framework {
    pub use mxn_framework::*;
}

/// The generalized M×N component (`mxn-core`).
pub mod core {
    pub use mxn_core::*;
}

/// Parallel remote method invocation (`mxn-prmi`).
pub mod prmi {
    pub use mxn_prmi::*;
}

/// The Distributed CCA Architecture (`mxn-dca`).
pub mod dca {
    pub use mxn_dca::*;
}

/// InterComm coupling (`mxn-intercomm`).
pub mod intercomm {
    pub use mxn_intercomm::*;
}

/// The Model Coupling Toolkit (`mxn-mct`).
pub mod mct {
    pub use mxn_mct::*;
}

/// Transformation pipelines and super-components (`mxn-pipeline`).
pub mod pipeline {
    pub use mxn_pipeline::*;
}

/// Structured event tracing (`mxn-trace`).
pub mod trace {
    pub use mxn_trace::*;
}

/// The Data Reorganization Interface standard (`mxn-dri`).
pub mod dri {
    pub use mxn_dri::*;
}

/// XChangemxn-style publish/subscribe coupling (`mxn-pubsub`).
pub mod pubsub {
    pub use mxn_pubsub::*;
}

/// The Unix-domain-socket transport: M×N across real OS processes
/// (`mxn-wire`).
pub mod wire {
    pub use mxn_wire::*;
}
