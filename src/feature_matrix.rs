//! The Figure 4 feature matrix, rebuilt by runtime probes.
//!
//! The paper's Figure 4 tabulates the M×N projects and their features.
//! Rather than hard-coding the table, each row here is produced by
//! *executing* a small probe of the corresponding implementation in this
//! workspace, so the matrix is a living artifact: a row only reports a
//! capability its code actually demonstrated.

use std::sync::Arc;

use crate::core::{ConnectionKind, Direction, MxnConnection, TransferOutcome};
use crate::dad::{AccessMode, Dad, Extents, LocalArray};
use crate::dca::{alltoallv_within, AlltoallvSpec};
use crate::intercomm::{ImportOutcome, Importer, MatchRule};
use crate::mct::{AttrVect, GlobalSegMap, ModelRegistry, Router};
use crate::prmi::{collective_serve, CollectiveEndpoint};
use crate::runtime::{Universe, World};

/// How a project describes parallel data (the "Parallel Data" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelDataKind {
    /// MPI-style count/displacement arrays (DCA).
    MpiArrays,
    /// Dense array descriptors (InterComm).
    DenseArrays,
    /// Dense/sparse arrays and grids (MCT).
    ArraysAndGrids,
    /// SIDL-described distributed arrays (MxN component, SciRun2).
    Sidl,
}

impl ParallelDataKind {
    /// The label used in the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            ParallelDataKind::MpiArrays => "MPI-based arrays",
            ParallelDataKind::DenseArrays => "Dense arrays",
            ParallelDataKind::ArraysAndGrids => "Dense/sparse arrays, grids",
            ParallelDataKind::Sidl => "SIDL",
        }
    }
}

/// One row of the feature matrix.
#[derive(Debug, Clone)]
pub struct ProjectFeatures {
    /// Project name as in Figure 4.
    pub project: &'static str,
    /// Parallel data representation.
    pub parallel_data: ParallelDataKind,
    /// Does it define PRMI semantics? (Figure 4's "PRMI" column.)
    pub prmi: bool,
    /// Did the runtime probe of this row's capabilities succeed?
    pub verified: bool,
}

/// Probes DCA: communicator-based alltoallv redistribution must work.
fn probe_dca() -> bool {
    let ok = World::run(2, |p| {
        let comm = p.world();
        let data = vec![comm.rank() as f64, 10.0 + comm.rank() as f64];
        let spec = AlltoallvSpec::contiguous(&[1, 1]);
        let got = alltoallv_within(comm, &data, &spec).unwrap();
        got[0] == vec![0.0 + if comm.rank() == 0 { 0.0 } else { 10.0 }] && got.len() == 2
    });
    ok.into_iter().all(|b| b)
}

/// Probes DCA's PRMI: a collective call with ghost returns must complete.
fn probe_prmi_collective() -> bool {
    use crate::framework::{AnyPayload, Dispatch, RemoteService};
    struct Echo;
    impl RemoteService for Echo {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
            AnyPayload::replicable(arg.downcast::<f64>().unwrap() * 2.0).into()
        }
    }
    let results = Universe::run(&[3, 2], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = CollectiveEndpoint::new();
            let r: f64 = ep.call(ic, 0, 21.0f64).unwrap();
            ep.shutdown(ic).unwrap();
            r == 42.0
        } else {
            collective_serve(ctx.intercomm(0), &Echo).is_ok()
        }
    });
    results.into_iter().all(|b| b)
}

/// Probes InterComm: a lower-bound timestamp import must fetch the right
/// version.
fn probe_intercomm() -> bool {
    let results = Universe::run(&[1, 1], |_, ctx| {
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        let rule = MatchRule::LowerBound;
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ex = crate::intercomm::Exporter::new(dad.clone(), dad.clone(), 0, rule, 8);
            for t in 0..4 {
                let data = LocalArray::from_fn(&dad, 0, |_| t as f64);
                ex.export(ic, t as f64, &data).unwrap();
            }
            ex.close(ic).unwrap();
            ex.serve_until_answered(ic, 1).unwrap();
            true
        } else {
            let ic = ctx.intercomm(0);
            let mut im = Importer::new(&dad, &dad, 0, rule);
            let mut dst: LocalArray<f64> = LocalArray::allocate(&dad, 0);
            im.import(ic, 2.5, &mut dst).unwrap() == ImportOutcome::Fulfilled { version: 2.0 }
                && *dst.get(&[0]).unwrap() == 2.0
        }
    });
    results.into_iter().all(|b| b)
}

/// Probes MCT: registry + router transfer of a multi-field vector.
fn probe_mct() -> bool {
    let results = World::run(2, |p| {
        let world = p.world();
        let comp = p.rank() as u32 + 1;
        let reg = ModelRegistry::init(world, comp).unwrap();
        let m1 = GlobalSegMap::block(6, 1);
        let m2 = GlobalSegMap::block(6, 1);
        if comp == 1 {
            let router = Router::new(&m1, 0, &m2, &reg, 2).unwrap();
            let mut av = AttrVect::new(&["t"], &[], 6);
            av.real_mut("t").copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
            router.send(world, &av, 0).unwrap();
            true
        } else {
            let router = Router::new(&m2, 0, &m1, &reg, 1).unwrap();
            let mut av = AttrVect::new(&["t"], &[], 6);
            router.recv(world, &mut av, 0).unwrap();
            av.real("t") == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        }
    });
    results.into_iter().all(|b| b)
}

/// Probes the M×N component: a one-shot registered-field transfer.
fn probe_mxn_component() -> bool {
    let results = Universe::run(&[2, 2], |_, ctx| {
        let rank = ctx.comm.rank();
        let src = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([4, 4]), &[1, 2]).unwrap();
        let mut reg = crate::core::FieldRegistry::new(rank);
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let data = Arc::new(parking_lot::RwLock::new(LocalArray::from_fn(&src, rank, |idx| {
                (idx[0] + idx[1]) as f64
            })));
            reg.register("f", src, AccessMode::Read, data).unwrap();
            let mut conn = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::OneShot,
            )
            .unwrap();
            matches!(conn.data_ready(ic, &reg).unwrap(), TransferOutcome::Transferred { .. })
        } else {
            let ic = ctx.intercomm(0);
            let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
            conn.data_ready(ic, &reg).unwrap();
            let ok = data.read().iter().all(|(idx, &v)| v == (idx[0] + idx[1]) as f64);
            ok
        }
    });
    results.into_iter().all(|b| b)
}

/// Probes SciRun2-style PRMI: parallel arguments redistributed during a
/// collective call.
fn probe_scirun_prmi() -> bool {
    use crate::framework::AnyPayload;
    use crate::prmi::{parallel_serve, ParallelEndpoint, ParallelPortSpec, ParallelService};
    struct SumSvc {
        dad: Dad,
    }
    impl ParallelService for SumSvc {
        fn spec(&self, _m: u32) -> Option<ParallelPortSpec> {
            Some(ParallelPortSpec { input: self.dad.clone(), output: None })
        }
        fn execute(
            &self,
            _m: u32,
            _arg: AnyPayload,
            input: LocalArray<f64>,
        ) -> (AnyPayload, Option<LocalArray<f64>>) {
            let s: f64 = input.iter().map(|(_, &v)| v).sum();
            (AnyPayload::replicable(s), None)
        }
    }
    let results = Universe::run(&[2, 1], |_, ctx| {
        let e = Extents::new([4]);
        let caller = Dad::block(e.clone(), &[2]).unwrap();
        let callee = Dad::block(e, &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = ParallelEndpoint::new();
            let local = LocalArray::from_fn(&caller, ctx.comm.rank(), |idx| idx[0] as f64 + 1.0);
            let s: f64 = ep.call_with_array(ic, 0, 0.0f64, &caller, &callee, &local).unwrap();
            ep.shutdown(ic).unwrap();
            s == 10.0
        } else {
            let svc = SumSvc { dad: callee.clone() };
            parallel_serve(ctx.intercomm(0), &caller, None, &svc).is_ok()
        }
    });
    results.into_iter().all(|b| b)
}

/// Builds the verified feature matrix (runs all probes; a few seconds).
pub fn build() -> Vec<ProjectFeatures> {
    vec![
        ProjectFeatures {
            project: "Dist. CCA Arch. (DCA)",
            parallel_data: ParallelDataKind::MpiArrays,
            prmi: true,
            verified: probe_dca() && probe_prmi_collective(),
        },
        ProjectFeatures {
            project: "InterComm",
            parallel_data: ParallelDataKind::DenseArrays,
            prmi: false,
            verified: probe_intercomm(),
        },
        ProjectFeatures {
            project: "Model Coupling Toolkit (MCT)",
            parallel_data: ParallelDataKind::ArraysAndGrids,
            prmi: false,
            verified: probe_mct(),
        },
        ProjectFeatures {
            project: "MxN Component",
            parallel_data: ParallelDataKind::Sidl,
            prmi: false,
            verified: probe_mxn_component(),
        },
        ProjectFeatures {
            project: "SciRun2",
            parallel_data: ParallelDataKind::Sidl,
            prmi: true,
            verified: probe_scirun_prmi(),
        },
    ]
}

/// Renders the matrix as the paper's Figure 4 layout (plus the
/// "verified" column showing the probe results).
pub fn render(rows: &[ProjectFeatures]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:<28} {:<6} {:<8}\n",
        "Project", "Parallel Data", "PRMI", "Verified"
    ));
    out.push_str(&format!("{}\n", "-".repeat(74)));
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:<28} {:<6} {:<8}\n",
            r.project,
            r.parallel_data.label(),
            if r.prmi { "Yes" } else { "No" },
            if r.verified { "ok" } else { "FAILED" },
        ));
    }
    out
}
